#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/dense_simplex.h"

namespace checkmate::lp {
namespace {

std::vector<std::pair<int, double>> terms(
    std::initializer_list<std::pair<int, double>> t) {
  return t;
}

TEST(DualSimplex, TrivialBoundsOnly) {
  LinearProgram lp;
  lp.add_var(1.0, 5.0, 1.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DualSimplex, ClassicTwoVariable) {
  LinearProgram lp;
  int x = lp.add_var(0, kInf, -3.0);
  int y = lp.add_var(0, kInf, -5.0);
  lp.add_le(terms({{x, 1.0}}), 4.0);
  lp.add_le(terms({{y, 2.0}}), 12.0);
  lp.add_le(terms({{x, 3.0}, {y, 2.0}}), 18.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -36.0, 1e-6);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 6.0, 1e-6);
}

TEST(DualSimplex, EqualityConstraint) {
  LinearProgram lp;
  int x = lp.add_var(0, kInf, 1.0);
  int y = lp.add_var(0, kInf, 2.0);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 3.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-8);
}

TEST(DualSimplex, InfeasibleDetected) {
  LinearProgram lp;
  int x = lp.add_var(0, 1, 1.0);
  lp.add_ge(terms({{x, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  EXPECT_EQ(res.status, LpStatus::kInfeasible);
}

TEST(DualSimplex, InfeasibleBoundVsEquality) {
  LinearProgram lp;
  int x = lp.add_var(0, 2, 0.0);
  int y = lp.add_var(0, 2, 0.0);
  lp.add_eq(terms({{x, 1.0}, {y, 1.0}}), 10.0);
  auto res = solve_lp(lp);
  EXPECT_EQ(res.status, LpStatus::kInfeasible);
}

TEST(DualSimplex, RangedRow) {
  LinearProgram lp;
  int x = lp.add_var(0, 10, 1.0);
  int y = lp.add_var(0, 1, 0.0);
  lp.add_constraint(terms({{x, 1.0}, {y, 1.0}}), 2.0, 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-8);
}

TEST(DualSimplex, NegativeCostBoundedAbove) {
  // min -x - 2y, x in [0,3], y in [0,4], x + y <= 5 => x=1? No:
  // maximize x + 2y: y=4, x=1, obj = -9.
  LinearProgram lp;
  int x = lp.add_var(0, 3, -1.0);
  int y = lp.add_var(0, 4, -2.0);
  lp.add_le(terms({{x, 1.0}, {y, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -9.0, 1e-7);
}

TEST(DualSimplex, WarmStartAfterBoundChange) {
  LinearProgram lp;
  int x = lp.add_var(0, 10, 1.0);
  int y = lp.add_var(0, 10, 1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 4.0);
  DualSimplex solver(lp);
  auto res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);

  // Force x >= 3: still optimal at obj 4 (x=3, y=1 or x=4).
  solver.set_var_bounds(x, 3.0, 10.0);
  res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);
  EXPECT_GE(res.x[0], 3.0 - 1e-9);

  // Force x == 0 and y <= 1: infeasible (x + y <= 1 < 4).
  solver.set_var_bounds(x, 0.0, 0.0);
  solver.set_var_bounds(y, 0.0, 1.0);
  res = solver.solve();
  EXPECT_EQ(res.status, LpStatus::kInfeasible);

  // Relax back: optimal again.
  solver.set_var_bounds(x, 0.0, 10.0);
  solver.set_var_bounds(y, 0.0, 10.0);
  res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-8);
}

TEST(DualSimplex, FixedVariableNeverEnters) {
  LinearProgram lp;
  int x = lp.add_var(2.0, 2.0, 1.0);  // fixed
  int y = lp.add_var(0, kInf, 1.0);
  lp.add_ge(terms({{x, 1.0}, {y, 1.0}}), 5.0);
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
  EXPECT_NEAR(res.objective, 5.0, 1e-7);
}

// Randomized cross-validation against the dense reference solver. Random
// LPs with bounded variables are always either optimal or infeasible, and
// the two solvers must agree on status and objective.
TEST(DualSimplex, MatchesDenseReferenceOnRandomLps) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> cost(-2.0, 2.0);
  int optimal_count = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 6);
    const int m = 1 + static_cast<int>(rng() % 6);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) {
      double lo = (rng() % 4 == 0) ? -static_cast<double>(rng() % 3) : 0.0;
      double hi = lo + 1.0 + static_cast<double>(rng() % 5);
      lp.add_var(lo, hi, cost(rng));
    }
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) t.emplace_back(j, coef(rng));
      const double rhs = coef(rng) * 2.0;
      switch (rng() % 3) {
        case 0: lp.add_le(t, rhs); break;
        case 1: lp.add_ge(t, rhs); break;
        default: lp.add_constraint(t, rhs, rhs + (rng() % 3)); break;
      }
    }
    auto sparse = solve_lp(lp);
    auto dense = solve_dense_reference(lp);
    ASSERT_EQ(sparse.status, dense.status) << "trial " << trial;
    if (sparse.status == LpStatus::kOptimal) {
      ++optimal_count;
      EXPECT_NEAR(sparse.objective, dense.objective, 1e-5)
          << "trial " << trial;
      EXPECT_LE(lp.max_violation(sparse.x), 1e-6) << "trial " << trial;
    }
  }
  // The generator should produce a healthy mix of feasible instances.
  EXPECT_GT(optimal_count, 30);
}

// ---------------------------------------------------------------------
// Snapshot / clone API: the substrate of the parallel branch & bound
// (children warm-start from the parent basis on whichever worker picks
// them up).

LinearProgram clone_test_lp(int n, uint32_t seed) {
  std::mt19937 rng(seed);
  LinearProgram lp;
  for (int j = 0; j < n; ++j)
    lp.add_var(0.0, 4.0 + (rng() % 4), 1.0 + static_cast<double>(rng() % 7));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5 + (rng() % 2));
    if (r + 5 < n) t.emplace_back(r + 5, 0.25);
    lp.add_ge(t, 2.0 + (rng() % 3));
  }
  return lp;
}

TEST(DualSimplex, CloneResolvesToIdenticalObjectiveAndBasis) {
  // After an arbitrary set_var_bounds sequence, a clone must re-solve to
  // the identical objective and primal point: the original sits at an
  // optimal basis, the clone restores that basis (lazy refactorize) and
  // its first solve must accept it without further pivoting.
  LinearProgram lp = clone_test_lp(24, 3u);
  DualSimplex original(lp);
  ASSERT_EQ(original.solve().status, LpStatus::kOptimal);

  std::mt19937 rng(17);
  LpResult last;
  for (int step = 0; step < 12; ++step) {
    const int j = static_cast<int>(rng() % 24);
    const double lo = static_cast<double>(rng() % 3);
    original.set_var_bounds(j, lo, lo + 1.0 + (rng() % 3));
    last = original.solve();
  }
  ASSERT_EQ(last.status, LpStatus::kOptimal);

  // The clone adopts the same optimal basis and re-solves to the same
  // optimum. (Not bitwise vs the original: the clone refactorizes fresh
  // while the original accumulated an eta file, so the numerics differ at
  // the last ulp -- what IS bitwise is clone-vs-clone, below.)
  DualSimplex copy = original.clone();
  const LpResult re = copy.solve();
  ASSERT_EQ(re.status, LpStatus::kOptimal);
  EXPECT_NEAR(re.objective, last.objective, 1e-9);
  ASSERT_EQ(re.x.size(), last.x.size());
  for (size_t j = 0; j < re.x.size(); ++j)
    EXPECT_NEAR(re.x[j], last.x[j], 1e-9);
  // Identical bound state came along with the basis.
  for (int j = 0; j < lp.num_vars(); ++j) {
    EXPECT_EQ(copy.var_lower(j), original.var_lower(j));
    EXPECT_EQ(copy.var_upper(j), original.var_upper(j));
  }

  // Two clones of the same engine are bit-identical to each other: the
  // post-restore trajectory is a pure function of the snapshot, which is
  // the determinism contract the parallel branch & bound relies on.
  DualSimplex twin_a = original.clone();
  DualSimplex twin_b = original.clone();
  const LpResult ra = twin_a.solve();
  const LpResult rb = twin_b.solve();
  ASSERT_EQ(ra.status, LpStatus::kOptimal);
  EXPECT_EQ(ra.objective, rb.objective);
  EXPECT_EQ(ra.iterations, rb.iterations);
  for (size_t j = 0; j < ra.x.size(); ++j) EXPECT_EQ(ra.x[j], rb.x[j]);
}

TEST(DualSimplex, CloneDivergesIndependentlyAfterTheFork) {
  // Post-fork bound changes on one engine must not leak into the other.
  LinearProgram lp = clone_test_lp(16, 9u);
  DualSimplex a(lp);
  ASSERT_EQ(a.solve().status, LpStatus::kOptimal);
  DualSimplex b = a.clone();

  a.set_var_bounds(0, 3.0, 3.0);
  const LpResult ra = a.solve();
  const LpResult rb = b.solve();  // b still solves the unrestricted LP
  ASSERT_EQ(ra.status, LpStatus::kOptimal);
  ASSERT_EQ(rb.status, LpStatus::kOptimal);
  EXPECT_GE(ra.objective, rb.objective - 1e-9);  // a is more constrained
  EXPECT_NEAR(ra.x[0], 3.0, 1e-9);

  // And the same fork applied to the clone reconverges exactly.
  b.set_var_bounds(0, 3.0, 3.0);
  const LpResult rb2 = b.solve();
  ASSERT_EQ(rb2.status, LpStatus::kOptimal);
  EXPECT_NEAR(rb2.objective, ra.objective, 1e-7);
}

TEST(DualSimplex, SnapshotRestoreRoundTripOnSameEngine) {
  LinearProgram lp = clone_test_lp(12, 21u);
  DualSimplex solver(lp);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);
  solver.set_var_bounds(2, 1.0, 2.0);
  const LpResult at_snap = solver.solve();
  ASSERT_EQ(at_snap.status, LpStatus::kOptimal);
  const BasisSnapshot snap = solver.snapshot();

  // Wander off...
  solver.set_var_bounds(2, 0.0, 0.0);
  solver.set_var_bounds(5, 2.0, 2.0);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);

  // ...and come back: bounds and optimum are the snapshot's (the re-solve
  // runs on a fresh factorization, so equality is numerical, and a second
  // restore reproduces the first bit-for-bit).
  solver.restore(snap);
  const LpResult back = solver.solve();
  ASSERT_EQ(back.status, LpStatus::kOptimal);
  EXPECT_NEAR(back.objective, at_snap.objective, 1e-9);
  EXPECT_EQ(solver.var_lower(2), 1.0);
  EXPECT_EQ(solver.var_upper(2), 2.0);
  solver.restore(snap);
  const LpResult again = solver.solve();
  ASSERT_EQ(again.status, LpStatus::kOptimal);
  EXPECT_EQ(again.objective, back.objective);
  EXPECT_EQ(again.iterations, back.iterations);
}

TEST(DualSimplex, InvalidSnapshotRestoresFreshEngine) {
  // A default-constructed snapshot (or one taken before the first solve)
  // resets the engine: next solve rebuilds from the slack basis and any
  // bound overrides are gone.
  LinearProgram lp = clone_test_lp(8, 33u);
  DualSimplex never_solved(lp);
  const BasisSnapshot unsolved = never_solved.snapshot();
  EXPECT_FALSE(unsolved.valid);

  DualSimplex solver(lp);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);
  const double clean_obj = solve_lp(lp).objective;
  solver.set_var_bounds(1, 3.0, 3.0);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);
  solver.restore(BasisSnapshot{});
  const LpResult fresh = solver.solve();
  ASSERT_EQ(fresh.status, LpStatus::kOptimal);
  EXPECT_NEAR(fresh.objective, clean_obj, 1e-9);
  EXPECT_EQ(solver.var_lower(1), lp.lb[1]);
  EXPECT_EQ(solver.var_upper(1), lp.ub[1]);
}

TEST(DualSimplex, CloneBeforeFirstSolveKeepsBoundOverrides) {
  // A clone taken after set_var_bounds but before any solve() has no basis
  // to carry, but it must still see the same feasible region.
  LinearProgram lp = clone_test_lp(10, 55u);
  DualSimplex original(lp);
  original.set_var_bounds(0, 3.0, 3.0);
  DualSimplex copy = original.clone();
  EXPECT_EQ(copy.var_lower(0), 3.0);
  EXPECT_EQ(copy.var_upper(0), 3.0);
  const LpResult a = original.solve();
  const LpResult b = copy.solve();
  ASSERT_EQ(a.status, b.status);
  if (a.status == LpStatus::kOptimal) {
    EXPECT_EQ(a.objective, b.objective);  // identical fresh-engine path
    EXPECT_NEAR(b.x[0], 3.0, 1e-9);
  }
}

TEST(DualSimplex, IterationAccountingMonotonePerEngine) {
  // iterations_total() only ever grows on a given engine, clones start
  // from zero, and restore() never rewinds the counter.
  LinearProgram lp = clone_test_lp(20, 41u);
  DualSimplex solver(lp);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);
  int64_t prev = solver.iterations_total();
  EXPECT_GT(prev, 0);

  std::mt19937 rng(5);
  const BasisSnapshot snap = solver.snapshot();
  for (int step = 0; step < 8; ++step) {
    const int j = static_cast<int>(rng() % 20);
    solver.set_var_bounds(j, 1.0, 2.0 + (rng() % 2));
    (void)solver.solve();
    EXPECT_GE(solver.iterations_total(), prev) << "step " << step;
    prev = solver.iterations_total();
    if (step == 4) {
      solver.restore(snap);  // rewind the state, never the meter
      EXPECT_EQ(solver.iterations_total(), prev);
    }
  }
  DualSimplex fork = solver.clone();
  EXPECT_EQ(fork.iterations_total(), 0);
  (void)fork.solve();
  EXPECT_GE(fork.iterations_total(), 0);
  EXPECT_GE(solver.iterations_total(), prev);
}

// ---------------------------------------------------------------------
// PR 4 hot path: steepest-edge pricing, bound-flipping ratio test,
// truncated-solve dual bounds, objective-limit early exit.

// Random boxed LPs -- every variable carries finite bounds on both sides,
// the shape of the 0/1 scheduling relaxations, so the long-step ratio
// test's bound flips fire constantly. Cross-checked against the dense
// reference solver for status and objective.
TEST(DualSimplex, BoxedCorpusMatchesDenseReference) {
  std::mt19937 rng(311);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> cost(-2.0, 2.0);
  int optimal_count = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 10);
    const int m = 1 + static_cast<int>(rng() % 8);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) {
      // Mostly unit boxes (binary relaxations), some wider.
      const double lo = (rng() % 5 == 0) ? -1.0 : 0.0;
      const double hi = lo + ((rng() % 4 == 0) ? 3.0 : 1.0);
      lp.add_var(lo, hi, cost(rng));
    }
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 3) t.emplace_back(j, coef(rng));
      const double rhs = coef(rng);
      switch (rng() % 3) {
        case 0: lp.add_le(t, rhs); break;
        case 1: lp.add_ge(t, rhs); break;
        default: lp.add_constraint(t, rhs, rhs + (rng() % 2)); break;
      }
    }
    auto sparse = solve_lp(lp);
    auto dense = solve_dense_reference(lp);
    ASSERT_EQ(sparse.status, dense.status) << "trial " << trial;
    if (sparse.status == LpStatus::kOptimal) {
      ++optimal_count;
      EXPECT_NEAR(sparse.objective, dense.objective, 1e-5)
          << "trial " << trial;
      EXPECT_LE(lp.max_violation(sparse.x), 1e-6) << "trial " << trial;
      EXPECT_EQ(sparse.dual_bound, sparse.objective) << "trial " << trial;
    }
  }
  EXPECT_GT(optimal_count, 40);
}

TEST(DualSimplex, TruncatedSolveReportsSoundDualBound) {
  // A truncated solve must surface a valid lower bound on the optimum so
  // branch & bound can keep the work of an abandoned node solve.
  LinearProgram lp = clone_test_lp(40, 7u);
  const double optimum = solve_lp(lp).objective;

  SimplexOptions opts;
  opts.max_iterations = 3;  // guaranteed truncation
  DualSimplex solver(lp, opts);
  const LpResult res = solver.solve();
  ASSERT_EQ(res.status, LpStatus::kIterationLimit);
  EXPECT_GT(res.dual_bound, -kInf);
  EXPECT_LE(res.dual_bound, optimum + 1e-6);
}

TEST(DualSimplex, ObjectiveLimitStopsEarlyWithSoundBound) {
  LinearProgram lp = clone_test_lp(40, 19u);
  const LpResult full = solve_lp(lp);
  ASSERT_EQ(full.status, LpStatus::kOptimal);

  // A cutoff below the optimum: the dual ascent must cross it and stop.
  SimplexOptions opts;
  opts.objective_limit = full.objective - 0.5;
  const LpResult cut = solve_lp(lp, opts);
  ASSERT_EQ(cut.status, LpStatus::kObjectiveLimit);
  EXPECT_GE(cut.dual_bound, opts.objective_limit);
  EXPECT_LE(cut.dual_bound, full.objective + 1e-6);
  EXPECT_LE(cut.iterations, full.iterations);

  // A cutoff above the optimum never triggers.
  opts.objective_limit = full.objective + 1.0;
  const LpResult clear = solve_lp(lp, opts);
  ASSERT_EQ(clear.status, LpStatus::kOptimal);
  EXPECT_NEAR(clear.objective, full.objective, 1e-9);
}

TEST(DualSimplex, SnapshotCarriesSteepestEdgeWeights) {
  // The steepest-edge weights ride the snapshot, and the post-restore
  // trajectory is a pure function of the snapshot: an engine that wandered
  // arbitrarily far and a fresh clone must re-solve bit-identically.
  LinearProgram lp = clone_test_lp(24, 13u);
  DualSimplex original(lp);
  ASSERT_EQ(original.solve().status, LpStatus::kOptimal);
  original.set_var_bounds(3, 1.0, 2.0);
  ASSERT_EQ(original.solve().status, LpStatus::kOptimal);

  const BasisSnapshot snap = original.snapshot();
  ASSERT_EQ(static_cast<int>(snap.dse_weights.size()), lp.num_rows());

  // Wander the original far away from the snapshot state.
  std::mt19937 rng(3);
  for (int step = 0; step < 10; ++step) {
    original.set_var_bounds(static_cast<int>(rng() % 24), 0.0,
                            1.0 + (rng() % 4));
    (void)original.solve();
  }

  DualSimplex fresh(lp);
  fresh.restore(snap);
  original.restore(snap);
  original.set_var_bounds(5, 2.0, 3.0);
  fresh.set_var_bounds(5, 2.0, 3.0);
  const LpResult a = original.solve();
  const LpResult b = fresh.solve();
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
  for (size_t j = 0; j < a.x.size(); ++j) EXPECT_EQ(a.x[j], b.x[j]);
}

// ---------------------------------------------------------------------
// Dynamic row append: the branch & cut search appends cut rows to the
// working LP mid-search, and parent snapshots captured before the append
// must restore cleanly into the grown LP.

TEST(DualSimplex, SyncRowsReoptimizesAfterAppendedRow) {
  LinearProgram lp = clone_test_lp(16, 29u);
  DualSimplex solver(lp);
  const LpResult before = solver.solve();
  ASSERT_EQ(before.status, LpStatus::kOptimal);

  // Append a valid-but-binding row: force the two cheapest activities up.
  lp.add_ge(std::vector<std::pair<int, double>>{{0, 1.0}, {1, 1.0}},
            before.x[0] + before.x[1] + 1.0);
  const LpResult after = solver.solve();  // sync happens inside solve()
  ASSERT_EQ(after.status, LpStatus::kOptimal);
  EXPECT_GE(after.objective, before.objective - 1e-9);
  EXPECT_NEAR(after.x[0] + after.x[1], before.x[0] + before.x[1] + 1.0, 1e-6);
  // And the warm re-solve agrees with a cold engine over the grown LP.
  const LpResult cold = solve_lp(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(after.objective, cold.objective, 1e-6);
}

TEST(DualSimplex, SnapshotRestoresAcrossRowCounts) {
  // Parent snapshot at m rows, child LP with appended cut rows: restore
  // adopts the parent basis for the old rows and slack-bases the new ones.
  LinearProgram lp = clone_test_lp(20, 31u);
  DualSimplex parent(lp);
  parent.set_var_bounds(2, 1.0, 3.0);  // a "branching path" override
  ASSERT_EQ(parent.solve().status, LpStatus::kOptimal);
  const BasisSnapshot snap = parent.snapshot();
  const int rows_at_capture = lp.num_rows();
  ASSERT_EQ(snap.num_rows, rows_at_capture);

  lp.add_ge(std::vector<std::pair<int, double>>{{4, 1.0}, {5, 1.0}}, 3.0);
  lp.add_ge(std::vector<std::pair<int, double>>{{6, 1.0}, {7, 2.0}}, 4.0);

  DualSimplex child(lp);  // fresh engine already sees the grown LP
  child.restore(snap);
  const LpResult res = child.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // The snapshot's bound override survived the cross-row-count restore.
  EXPECT_GE(res.x[2], 1.0 - 1e-9);
  EXPECT_LE(res.x[2], 3.0 + 1e-9);
  LpResult cold;
  {
    DualSimplex fresh(lp);
    fresh.set_var_bounds(2, 1.0, 3.0);
    cold = fresh.solve();
  }
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, cold.objective, 1e-6);

  // The parent engine itself syncs on its next solve and agrees.
  const LpResult parent_res = parent.solve();
  ASSERT_EQ(parent_res.status, LpStatus::kOptimal);
  EXPECT_NEAR(parent_res.objective, cold.objective, 1e-6);
}

TEST(DualSimplex, CrossRowCountRestoreIsBitIdenticalAndCarriesWeights) {
  // Two engines restored from the same pre-append snapshot over the grown
  // LP must follow bit-identical trajectories -- including the carried
  // steepest-edge weights (snapshot.dse_weights covers the OLD rows; the
  // appended rows deterministically start at the unit frame).
  LinearProgram lp = clone_test_lp(24, 37u);
  DualSimplex original(lp);
  ASSERT_EQ(original.solve().status, LpStatus::kOptimal);
  const BasisSnapshot snap = original.snapshot();
  ASSERT_EQ(static_cast<int>(snap.dse_weights.size()), snap.num_rows);

  lp.add_ge(std::vector<std::pair<int, double>>{{0, 1.0}, {3, 1.0}}, 4.0);

  DualSimplex a(lp), b(lp);
  a.restore(snap);
  b.restore(snap);
  a.set_var_bounds(9, 2.0, 4.0);
  b.set_var_bounds(9, 2.0, 4.0);
  const LpResult ra = a.solve();
  const LpResult rb = b.solve();
  ASSERT_EQ(ra.status, LpStatus::kOptimal);
  EXPECT_EQ(ra.objective, rb.objective);
  EXPECT_EQ(ra.iterations, rb.iterations);
  ASSERT_EQ(ra.x.size(), rb.x.size());
  for (size_t j = 0; j < ra.x.size(); ++j) EXPECT_EQ(ra.x[j], rb.x[j]);
}

TEST(DualSimplex, RestoreRemapsSnapshotWithRemovedRows) {
  // Cut-row garbage collection can shrink the LP between capture and
  // restore: the snapshot's extra row is matched away by id and the
  // surviving rows keep their basis state.
  LinearProgram big = clone_test_lp(10, 41u);
  LinearProgram small = big;  // ids 0..9 in both
  big.add_ge(std::vector<std::pair<int, double>>{{0, 1.0}}, 1.0);  // id 10
  DualSimplex big_engine(big);
  big_engine.set_var_bounds(1, 0.5, 2.0);
  ASSERT_EQ(big_engine.solve().status, LpStatus::kOptimal);
  const BasisSnapshot snap = big_engine.snapshot();
  DualSimplex small_engine(small);
  small_engine.restore(snap);
  const LpResult warm = small_engine.solve();
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  // The override survived and the warm solve agrees with a cold one.
  DualSimplex fresh(small);
  fresh.set_var_bounds(1, 0.5, 2.0);
  const LpResult cold = fresh.solve();
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_GE(warm.x[1], 0.5 - 1e-9);
  EXPECT_LE(warm.x[1], 2.0 + 1e-9);
}

TEST(DualSimplex, ModeratelyLargeStructuredLp) {
  // Staircase LP with 200 variables / 200 rows; verifies the sparse path
  // and refactorization cadence.
  LinearProgram lp;
  const int n = 200;
  for (int j = 0; j < n; ++j) lp.add_var(0.0, 10.0, 1.0 + (j % 3));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5);
    lp.add_ge(t, 2.0);
  }
  auto res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_LE(lp.max_violation(res.x), 1e-6);
  // Cross-check with the dense reference.
  auto dense = solve_dense_reference(lp);
  ASSERT_EQ(dense.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, dense.objective, 1e-4);
}

// ---------------------------------------------------------------------
// Forrest-Tomlin updates and Curtis-Reid scaling (the PR-10 engine work).

TEST(DualSimplex, ForrestTomlinMatchesEtaAccumulation) {
  // The FT update path must reach the same optimum as the product-form
  // eta path on a pivot-heavy instance, and the observability counters
  // must show which path actually ran.
  LinearProgram lp;
  const int n = 200;
  for (int j = 0; j < n; ++j) lp.add_var(0.0, 10.0, 1.0 + (j % 3));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> t{{r, 1.0}};
    if (r + 1 < n) t.emplace_back(r + 1, 0.5);
    if (r + 7 < n) t.emplace_back(r + 7, 0.25);
    lp.add_ge(t, 2.0 + (r % 3));
  }
  SimplexOptions ft_on;
  ft_on.forrest_tomlin = true;
  SimplexOptions ft_off;
  ft_off.forrest_tomlin = false;
  DualSimplex a(lp, ft_on);
  DualSimplex b(lp, ft_off);
  auto ra = a.solve();
  auto rb = b.solve();
  ASSERT_EQ(ra.status, LpStatus::kOptimal);
  ASSERT_EQ(rb.status, LpStatus::kOptimal);
  EXPECT_NEAR(ra.objective, rb.objective, 1e-6);
  EXPECT_LE(lp.max_violation(ra.x), 1e-6);
  EXPECT_GT(a.stats().ft_updates, 0);
  EXPECT_EQ(a.stats().eta_pivots, 0);
  EXPECT_EQ(b.stats().ft_updates, 0);
  EXPECT_GT(b.stats().eta_pivots, 0);
}

TEST(DualSimplex, ForrestTomlinAgreesOnRandomCorpus) {
  // Status and objective agreement between the two basis-update paths
  // across a random corpus (same generator family as the dense-reference
  // corpus, skewed a little larger so updates actually accumulate).
  std::mt19937 rng(41);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> cost(-2.0, 2.0);
  int optimal_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 12);
    const int m = 4 + static_cast<int>(rng() % 12);
    LinearProgram lp;
    for (int j = 0; j < n; ++j) {
      double lo = (rng() % 4 == 0) ? -static_cast<double>(rng() % 3) : 0.0;
      lp.add_var(lo, lo + 1.0 + static_cast<double>(rng() % 5), cost(rng));
    }
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> t;
      for (int j = 0; j < n; ++j)
        if (rng() % 2) t.emplace_back(j, coef(rng));
      const double rhs = coef(rng) * 2.0;
      if (rng() % 2) {
        lp.add_le(t, rhs);
      } else {
        lp.add_ge(t, rhs);
      }
    }
    SimplexOptions ft_on;
    ft_on.forrest_tomlin = true;
    SimplexOptions ft_off;
    ft_off.forrest_tomlin = false;
    auto ra = solve_lp(lp, ft_on);
    auto rb = solve_lp(lp, ft_off);
    ASSERT_EQ(ra.status, rb.status) << "trial " << trial;
    if (ra.status == LpStatus::kOptimal) {
      ++optimal_count;
      EXPECT_NEAR(ra.objective, rb.objective, 1e-5) << "trial " << trial;
    }
  }
  EXPECT_GT(optimal_count, 10);
}

TEST(DualSimplex, ScalingSolvesBadlyRangedLp) {
  // Columns spanning ~12 orders of magnitude. Curtis-Reid scaling keeps
  // the factorization well-conditioned; the solution must come back in
  // the ORIGINAL frame (bounds/violations checked unscaled) and agree
  // with the unscaled solve and the dense reference.
  LinearProgram lp;
  const int n = 30;
  for (int j = 0; j < n; ++j) {
    const double s = std::pow(10.0, static_cast<double>(j % 13) - 6.0);
    lp.add_var(0.0, 10.0 / s, s);
  }
  for (int r = 0; r + 1 < n; ++r) {
    const double sr = std::pow(10.0, static_cast<double>(r % 7) - 3.0);
    const double cr = std::pow(10.0, static_cast<double>(r % 13) - 6.0);
    const double cn = std::pow(10.0, static_cast<double>((r + 1) % 13) - 6.0);
    lp.add_ge(terms({{r, sr * cr}, {r + 1, 0.5 * sr * cn}}), 2.0 * sr);
  }
  // The equivalent unit-frame LP (y_j = col_scale_j * x_j) is what the
  // dense reference can solve reliably -- running it on the badly-ranged
  // original makes it pick degenerate pivots and report an infeasible
  // "optimum", which is exactly the failure mode scaling exists to avoid.
  LinearProgram unit;
  for (int j = 0; j < n; ++j) unit.add_var(0.0, 10.0, 1.0);
  for (int r = 0; r + 1 < n; ++r)
    unit.add_ge(terms({{r, 1.0}, {r + 1, 0.5}}), 2.0);
  SimplexOptions on;
  on.scaling = true;
  SimplexOptions off;
  off.scaling = false;
  auto ra = solve_lp(lp, on);
  auto rb = solve_lp(lp, off);
  auto dense = solve_dense_reference(unit);
  ASSERT_EQ(ra.status, LpStatus::kOptimal);
  ASSERT_EQ(rb.status, LpStatus::kOptimal);
  ASSERT_EQ(dense.status, LpStatus::kOptimal);
  const double rel = std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(ra.objective, dense.objective, 1e-6 * rel);
  // The unscaled engine is allowed to drift on this instance (that drift
  // is why scaling exists) but must never beat the true optimum.
  EXPECT_GE(rb.objective, dense.objective - 1e-6 * rel);
  EXPECT_LE(lp.max_violation(ra.x), 1e-6);
}

}  // namespace
}  // namespace checkmate::lp
