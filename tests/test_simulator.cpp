#include "core/simulator.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/rounding.h"

namespace checkmate {
namespace {

TEST(Simulator, CheckpointAllMatchesAnalyticCostAndMemory) {
  auto p = RematProblem::unit_training_chain(3);  // n = 7
  auto sol = baselines::checkpoint_all_schedule(p);
  auto plan = generate_execution_plan(p, sol);
  auto sim = simulate_plan(p, plan);
  ASSERT_TRUE(sim.valid) << sim.error;
  EXPECT_DOUBLE_EQ(sim.total_cost, 7.0);  // each node once
  EXPECT_EQ(sim.compute_count, 7);
  // Peak: all four forward values + first gradient = 5 units.
  EXPECT_DOUBLE_EQ(sim.peak_memory, 5.0);
}

TEST(Simulator, PeakNeverExceedsAccountingPeak) {
  // The simulator's realized peak must be <= the ILP-style accounting peak
  // (the plan releases replaced registers; the accounting double-counts).
  auto p = RematProblem::unit_training_chain(4);
  BoolMatrix s = make_bool_matrix(p.size(), p.size());
  for (int t = 1; t < p.size(); ++t) s[t][1] = (t > 1);
  RematSolution sol;
  sol.S = s;
  sol.R = solve_r_given_s(p.graph, s);
  auto plan = generate_execution_plan(p, sol);
  auto sim = simulate_plan(p, plan);
  ASSERT_TRUE(sim.valid) << sim.error;
  EXPECT_LE(sim.peak_memory, peak_memory_usage(p, sol) + 1e-9);
}

TEST(Simulator, FixedOverheadIncluded) {
  auto p = RematProblem::unit_training_chain(2);
  p.fixed_overhead = 100.0;
  auto sol = baselines::checkpoint_all_schedule(p);
  auto plan = generate_execution_plan(p, sol);
  auto sim = simulate_plan(p, plan);
  ASSERT_TRUE(sim.valid);
  EXPECT_GE(sim.peak_memory, 100.0);
}

TEST(Simulator, BudgetViolationReported) {
  auto p = RematProblem::unit_training_chain(3);
  auto sol = baselines::checkpoint_all_schedule(p);
  auto plan = generate_execution_plan(p, sol);
  SimulatorOptions opts;
  opts.budget_bytes = 3.0;  // checkpoint-all needs 5
  auto sim = simulate_plan(p, plan, opts);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("budget"), std::string::npos);
}

TEST(Simulator, MissingDependencyDetected) {
  auto p = RematProblem::unit_chain(2);
  ExecutionPlan plan;
  plan.num_registers = 1;
  plan.statements.push_back({StatementKind::kCompute, 1, 0, 0});  // needs 0
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("dependency"), std::string::npos);
}

TEST(Simulator, DoubleComputeOfLiveValueDetected) {
  auto p = RematProblem::unit_chain(1);
  ExecutionPlan plan;
  plan.num_registers = 2;
  plan.statements.push_back({StatementKind::kCompute, 0, 0, 0});
  plan.statements.push_back({StatementKind::kCompute, 0, 1, 0});
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
}

TEST(Simulator, DeallocOfDeadRegisterDetected) {
  auto p = RematProblem::unit_chain(1);
  ExecutionPlan plan;
  plan.num_registers = 1;
  plan.statements.push_back({StatementKind::kDeallocate, 0, 0, 0});
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
}

TEST(Simulator, RequireAllNodesComputed) {
  auto p = RematProblem::unit_chain(2);
  ExecutionPlan plan;
  plan.num_registers = 1;
  plan.statements.push_back({StatementKind::kCompute, 0, 0, 0});
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("never computed"), std::string::npos);

  SimulatorOptions opts;
  opts.require_all_nodes_computed = false;
  auto sim2 = simulate_plan(p, plan, opts);
  EXPECT_TRUE(sim2.valid);
}

TEST(Simulator, MemoryTraceAlignsWithStatements) {
  auto p = RematProblem::unit_training_chain(2);
  auto sol = baselines::checkpoint_all_schedule(p);
  auto plan = generate_execution_plan(p, sol);
  auto sim = simulate_plan(p, plan);
  ASSERT_TRUE(sim.valid);
  ASSERT_EQ(sim.memory_trace.size(), plan.statements.size());
  ASSERT_EQ(sim.stage_trace.size(), plan.statements.size());
  // Trace peaks at sim.peak_memory.
  double peak = p.fixed_overhead;
  for (double v : sim.memory_trace) peak = std::max(peak, v);
  EXPECT_DOUBLE_EQ(peak, sim.peak_memory);
}

TEST(Simulator, StageOutOfRangeRejectedWithDiagnostic) {
  auto p = RematProblem::unit_chain(2);
  ExecutionPlan plan;
  plan.num_registers = 2;
  plan.statements.push_back({StatementKind::kCompute, 0, 0, 5});  // n == 2
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("stage"), std::string::npos);

  plan.statements[0].stage = -1;
  sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("stage"), std::string::npos);
}

TEST(Simulator, NegativeRegisterCountRejectedWithDiagnostic) {
  auto p = RematProblem::unit_chain(2);
  ExecutionPlan plan;
  plan.num_registers = -1;
  auto sim = simulate_plan(p, plan);
  EXPECT_FALSE(sim.valid);
  EXPECT_NE(sim.error.find("register"), std::string::npos);
}

// Fuzz corpus: seeded mutations of a valid plan. Every mutant must either
// simulate cleanly or be rejected with a diagnostic -- never crash, hang,
// or report valid with broken state.
TEST(Simulator, MutatedValidPlansNeverCrash) {
  auto p = RematProblem::unit_training_chain(4);
  const auto sol = baselines::checkpoint_all_schedule(p);
  const ExecutionPlan valid = generate_execution_plan(p, sol);
  ASSERT_TRUE(simulate_plan(p, valid).valid);

  // splitmix64: deterministic corpus, no <random> distribution variance.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };

  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    ExecutionPlan mutant = valid;
    const size_t pos = next() % mutant.statements.size();
    Statement& st = mutant.statements[pos];
    switch (next() % 6) {
      case 0: st.node = static_cast<NodeId>(next() % (p.size() + 4)) - 2;
        break;
      case 1: st.reg = static_cast<int>(next() % (mutant.num_registers + 4)) - 2;
        break;
      case 2: st.stage = static_cast<int>(next() % (p.size() + 4)) - 2; break;
      case 3:
        st.kind = st.kind == StatementKind::kCompute
                      ? StatementKind::kDeallocate
                      : StatementKind::kCompute;
        break;
      case 4:
        mutant.statements.erase(mutant.statements.begin() +
                                static_cast<long>(pos));
        break;
      case 5: {
        const Statement dup = mutant.statements[pos];
        mutant.statements.insert(
            mutant.statements.begin() + static_cast<long>(pos), dup);
        break;
      }
    }
    const auto sim = simulate_plan(p, mutant);
    if (!sim.valid) {
      ++rejected;
      EXPECT_FALSE(sim.error.empty()) << "rejection without diagnostic";
    }
  }
  // Most mutations break the plan; the corpus must actually exercise the
  // rejection paths, not accidentally keep every mutant valid.
  EXPECT_GT(rejected, 100);
}

TEST(Simulator, TimelineShapeRetainVsRemat) {
  // Figure 1's shape: checkpoint-all climbs to a high peak; an aggressive
  // rematerialization schedule (few checkpoints) stays much lower.
  auto p = RematProblem::unit_training_chain(8);
  auto all = baselines::checkpoint_all_schedule(p);
  auto sim_all =
      simulate_plan(p, generate_execution_plan(p, all));
  auto lean_schedules =
      baselines::baseline_schedules(p, baselines::BaselineKind::kChenSqrtN);
  ASSERT_EQ(lean_schedules.size(), 1u);
  auto sim_lean = simulate_plan(
      p, generate_execution_plan(p, lean_schedules[0].solution));
  ASSERT_TRUE(sim_all.valid);
  ASSERT_TRUE(sim_lean.valid);
  EXPECT_LT(sim_lean.peak_memory, sim_all.peak_memory);
  EXPECT_GT(sim_lean.total_cost, sim_all.total_cost);
}

}  // namespace
}  // namespace checkmate
