#include "core/solution.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/remat_problem.h"

namespace checkmate {
namespace {

// Schedule that computes everything once and keeps it (checkpoint-all on a
// unit chain).
RematSolution keep_all(int n) {
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t) {
    sol.R[t][t] = 1;
    for (int i = 0; i < t; ++i) sol.S[t][i] = 1;
  }
  return sol;
}

TEST(Solution, KeepAllIsFeasible) {
  auto p = RematProblem::unit_chain(4);
  auto sol = keep_all(4);
  EXPECT_EQ(sol.check_feasible(p), "");
  EXPECT_DOUBLE_EQ(sol.compute_cost(p), 4.0);
  EXPECT_EQ(sol.num_computations(), 4);
}

TEST(Solution, DetectsMissingDiagonal) {
  auto p = RematProblem::unit_chain(3);
  auto sol = keep_all(3);
  sol.R[1][1] = 0;
  EXPECT_NE(sol.check_feasible(p).find("8a"), std::string::npos);
}

TEST(Solution, DetectsUpperTriangularViolation) {
  auto p = RematProblem::unit_chain(3);
  auto sol = keep_all(3);
  sol.R[0][2] = 1;
  EXPECT_NE(sol.check_feasible(p).find("8c"), std::string::npos);
  sol = keep_all(3);
  sol.S[1][2] = 1;
  EXPECT_NE(sol.check_feasible(p).find("8b"), std::string::npos);
}

TEST(Solution, DetectsMissingDependency) {
  auto p = RematProblem::unit_chain(3);
  auto sol = keep_all(3);
  sol.S[2][1] = 0;  // stage 2 computes node 2 without node 1 resident
  EXPECT_NE(sol.check_feasible(p).find("1b"), std::string::npos);
}

TEST(Solution, DetectsDeadCheckpoint) {
  auto p = RematProblem::unit_chain(4);
  auto sol = keep_all(4);
  // Node 0 is unused after stage 1: drop it at stage 2, then it cannot
  // legally reappear as a checkpoint at stage 3.
  sol.S[2][0] = 0;
  sol.S[3][0] = 1;
  EXPECT_NE(sol.check_feasible(p).find("1c"), std::string::npos);
}

TEST(Solution, FreeScheduleKeepAllFreesNothingUntilUnused) {
  auto p = RematProblem::unit_chain(3);
  auto sol = keep_all(3);
  auto fs = compute_free_schedule(p, sol);
  // Values are checkpointed forever: only the very last stage can free, and
  // there, values with no later users are freed after the final compute.
  for (int t = 0; t < 2; ++t)
    for (int k = 0; k <= t; ++k)
      EXPECT_TRUE(fs.after_compute[t][k].empty()) << t << "," << k;
}

TEST(Solution, MemoryUsageKeepAllGrowsLinearly) {
  auto p = RematProblem::unit_chain(4);
  auto sol = keep_all(4);
  auto u = compute_memory_usage(p, sol);
  // After computing node t at stage t, t+1 values are live.
  for (int t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(u[t][t], t + 1.0);
  EXPECT_DOUBLE_EQ(peak_memory_usage(p, sol), 4.0);
}

TEST(Solution, MemoryUsageIncludesFixedOverhead) {
  auto p = RematProblem::unit_chain(3);
  p.fixed_overhead = 10.0;
  auto sol = keep_all(3);
  EXPECT_DOUBLE_EQ(peak_memory_usage(p, sol), 13.0);
}

TEST(Solution, RecomputeEveryStageUsesConstantMemory) {
  // S empty: every stage recomputes the whole prefix. Memory stays at 2
  // for a unit chain (current + parent) once frees kick in.
  const int n = 5;
  auto p = RematProblem::unit_chain(n);
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t)
    for (int i = 0; i <= t; ++i) sol.R[t][i] = 1;
  EXPECT_EQ(sol.check_feasible(p), "");
  EXPECT_DOUBLE_EQ(peak_memory_usage(p, sol), 2.0);
  EXPECT_DOUBLE_EQ(sol.compute_cost(p), 15.0);  // 1+2+3+4+5
}

TEST(Solution, SpuriousCheckpointDroppedAtStageBoundary) {
  const int n = 3;
  auto p = RematProblem::unit_chain(n);
  auto sol = keep_all(n);
  // Keep node 0 into stage 2 but it is unused there (node 2 needs node 1).
  // Droppable at stage 2 start under code motion.
  sol.S[2][0] = 1;
  auto fs = compute_free_schedule(p, sol);
  EXPECT_EQ(fs.stage_drop[2], std::vector<NodeId>{0});
}

TEST(Solution, RaggedRowsRejectedWithDiagnostic) {
  // Malformed R/S matrices must produce a diagnostic, never an
  // out-of-bounds read inside the constraint checks.
  const int n = 3;
  auto p = RematProblem::unit_chain(n);
  auto sol = keep_all(n);
  ASSERT_EQ(sol.check_feasible(p), "");

  auto short_r = sol;
  short_r.R[1].pop_back();
  EXPECT_NE(short_r.check_feasible(p).find("malformed"), std::string::npos);

  auto long_s = sol;
  long_s.S[2].push_back(0);
  EXPECT_NE(long_s.check_feasible(p).find("malformed"), std::string::npos);

  auto empty_row = sol;
  empty_row.R[0].clear();
  EXPECT_NE(empty_row.check_feasible(p).find("malformed"), std::string::npos);
}

TEST(Solution, DependencyComputedAfterUseRejected) {
  // Stage 1 computes node 1 whose dependency (node 0) is neither resident
  // nor recomputed in that stage: the (1b) check must name the pair.
  const int n = 3;
  auto p = RematProblem::unit_chain(n);
  RematSolution sol;
  sol.R = make_bool_matrix(n, n);
  sol.S = make_bool_matrix(n, n);
  for (int t = 0; t < n; ++t) sol.R[t][t] = 1;
  const std::string err = sol.check_feasible(p);
  EXPECT_NE(err.find("(1b)"), std::string::npos);
}

TEST(Solution, RetainedButNeverComputedRejected) {
  // Node 0 is dead throughout stage 2 (not checkpointed in, not
  // recomputed), yet stage 3 claims to retain it -- the (1c) check must
  // reject the phantom checkpoint. Stage 2 itself stays legal: node 2
  // only needs node 1, which is checkpointed.
  const int n = 4;
  auto p = RematProblem::unit_chain(n);
  auto sol = keep_all(n);
  sol.S[2][0] = 0;  // dead during stage 2 ...
  ASSERT_EQ(sol.S[3][0], 1);  // ... yet keep_all retains it into stage 3
  const std::string err = sol.check_feasible(p);
  EXPECT_NE(err.find("(1c)"), std::string::npos);
}

TEST(Solution, RenderScheduleShape) {
  auto sol = keep_all(3);
  const std::string art = render_schedule(sol);
  EXPECT_EQ(art, "#..\no#.\noo#\n");
}

}  // namespace
}  // namespace checkmate
