#include "lp/sparse_matrix.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace checkmate::lp {
namespace {

TEST(SparseMatrix, EmptyMatrix) {
  SparseMatrix m(3, 4, {});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  for (int j = 0; j < 4; ++j) EXPECT_TRUE(m.col_rows(j).empty());
}

TEST(SparseMatrix, BasicConstruction) {
  std::vector<Triplet> t{{0, 0, 1.0}, {2, 0, -2.0}, {1, 1, 3.0}};
  SparseMatrix m(3, 2, t);
  EXPECT_EQ(m.nnz(), 3);
  ASSERT_EQ(m.col_rows(0).size(), 2u);
  EXPECT_EQ(m.col_rows(0)[0], 0);
  EXPECT_EQ(m.col_rows(0)[1], 2);
  EXPECT_DOUBLE_EQ(m.col_values(0)[1], -2.0);
}

TEST(SparseMatrix, DuplicatesSummed) {
  std::vector<Triplet> t{{1, 0, 2.0}, {1, 0, 3.0}};
  SparseMatrix m(2, 1, t);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.col_values(0)[0], 5.0);
}

TEST(SparseMatrix, DuplicatesCancelToZeroDropped) {
  std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, -1.0}};
  SparseMatrix m(1, 1, t);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(SparseMatrix, RowsSortedWithinColumn) {
  std::vector<Triplet> t{{5, 0, 1.0}, {1, 0, 1.0}, {3, 0, 1.0}};
  SparseMatrix m(6, 1, t);
  auto rows = m.col_rows(0);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  std::vector<Triplet> t{{0, 7, 1.0}};
  EXPECT_THROW(SparseMatrix(2, 2, t), std::out_of_range);
}

TEST(SparseMatrix, AxpyColumn) {
  std::vector<Triplet> t{{0, 0, 2.0}, {2, 0, -1.0}};
  SparseMatrix m(3, 1, t);
  std::vector<double> y{1.0, 1.0, 1.0};
  m.axpy_column(0, 3.0, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
}

TEST(SparseMatrix, DotColumn) {
  std::vector<Triplet> t{{0, 0, 2.0}, {2, 0, -1.0}};
  SparseMatrix m(3, 1, t);
  std::vector<double> x{1.0, 10.0, 4.0};
  EXPECT_DOUBLE_EQ(m.dot_column(0, x), 2.0 - 4.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = 1 + static_cast<int>(rng() % 8);
    const int cols = 1 + static_cast<int>(rng() % 8);
    std::vector<std::vector<double>> dense(rows, std::vector<double>(cols, 0));
    std::vector<Triplet> trips;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        if (rng() % 3 == 0) {
          const double v = val(rng);
          dense[r][c] = v;
          trips.push_back({r, c, v});
        }
    SparseMatrix m(rows, cols, trips);
    std::vector<double> x(cols);
    for (double& v : x) v = val(rng);
    auto y = m.multiply(x);
    for (int r = 0; r < rows; ++r) {
      double expect = 0;
      for (int c = 0; c < cols; ++c) expect += dense[r][c] * x[c];
      EXPECT_NEAR(y[r], expect, 1e-12);
    }
  }
}

TEST(SparseMatrix, AppendRowsExtendsCscAndCsrMirror) {
  // Branch & cut grows the working matrix by cut rows against a warm
  // basis; both access paths (columns for FTRAN, rows for hypersparse
  // pricing) must agree with a from-scratch build afterwards.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  const int rows = 9, cols = 13, extra = 4;
  std::vector<Triplet> base, appended;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng() % 3 == 0) base.push_back({r, c, val(rng)});
  for (int r = rows; r < rows + extra; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng() % 4 == 0) appended.push_back({r, c, val(rng)});
  // A duplicate triplet in an appended row must be summed like the ctor.
  appended.push_back({rows, 2, 0.5});
  appended.push_back({rows, 2, 0.25});

  SparseMatrix grown(rows, cols, base);
  grown.append_rows(extra, appended);
  std::vector<Triplet> all = base;
  all.insert(all.end(), appended.begin(), appended.end());
  SparseMatrix fresh(rows + extra, cols, all);

  ASSERT_EQ(grown.rows(), fresh.rows());
  ASSERT_EQ(grown.nnz(), fresh.nnz());
  for (int j = 0; j < cols; ++j) {
    auto gr = grown.col_rows(j), fr = fresh.col_rows(j);
    auto gv = grown.col_values(j), fv = fresh.col_values(j);
    ASSERT_EQ(gr.size(), fr.size()) << "col " << j;
    for (size_t k = 0; k < gr.size(); ++k) {
      EXPECT_EQ(gr[k], fr[k]);
      EXPECT_EQ(gv[k], fv[k]);
    }
  }
  for (int i = 0; i < rows + extra; ++i) {
    auto gc = grown.row_cols(i), fc = fresh.row_cols(i);
    auto gv = grown.row_values(i), fv = fresh.row_values(i);
    ASSERT_EQ(gc.size(), fc.size()) << "row " << i;
    for (size_t k = 0; k < gc.size(); ++k) {
      EXPECT_EQ(gc[k], fc[k]);
      EXPECT_EQ(gv[k], fv[k]);
    }
  }
}

TEST(SparseMatrix, AppendRowsRejectsOutOfRangeTriplets) {
  SparseMatrix m(2, 2, std::vector<Triplet>{{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(m.append_rows(1, std::vector<Triplet>{{0, 0, 1.0}}),
               std::out_of_range);  // touches an existing row
  EXPECT_THROW(m.append_rows(1, std::vector<Triplet>{{3, 0, 1.0}}),
               std::out_of_range);  // beyond the appended range
}

}  // namespace
}  // namespace checkmate::lp
